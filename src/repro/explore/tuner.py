"""The AMOS tuner: enumerate mappings, explore schedules, measure the best.

``Tuner.tune`` is the operational core of the compiler: it enumerates all
valid mappings for the operator on the target's intrinsics, runs the
genetic search with the analytic model as fitness, measures the
model-selected top candidates on the cycle simulator, and returns the best
measured (mapping, schedule) pair with its exploration history — the
history is what Fig 5's model-validation curves are drawn from.

Every model prediction and simulator measurement flows through one
:class:`~repro.engine.engine.EvaluationEngine` per tune run: the
prefilter, the genetic search (via its batch ``fitness_many`` hook), the
measurement pass and the refinement rounds all submit *batches* of
candidates.  The engine memoizes by canonical candidate fingerprint and,
when ``TunerConfig.n_workers`` allows, evaluates large batches on a
spawn-safe process pool — with results reassembled in submission order,
so the tuner's output is byte-identical for any worker count and any
cache temperature.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.engine import EvaluationEngine
from repro.engine.faults import FaultPlan, FaultPolicy
from repro.engine.fingerprint import (
    computation_fingerprint,
    hardware_fingerprint,
    tuner_config_fingerprint,
)
from repro.explore.genetic import (
    Candidate,
    GeneticConfig,
    genetic_search,
    genetic_search_rows,
)
from repro.ir.compute import ReduceComputation
from repro.isa.registry import intrinsics_for_target
from repro.mapping.generation import GenerationOptions, enumerate_mappings
from repro.mapping.physical import PhysicalMapping, lower_to_physical
from repro.model.hardware_params import HardwareParams
from repro.obs import metrics as _obs_metrics
from repro.obs.explore_log import ExploreLog, current_log, generation_stats, use_log
from repro.obs.logging import LEVELS, get_logger, log_level
from repro.obs.runlog import FlightRecorder, active_recorder
from repro.obs.trace import span as _obs_span
from repro.obs.trace import tracing_enabled as _obs_enabled
from repro.schedule.features import ScheduleBatch, schedules_from_rows, take_rows
from repro.schedule.lowering import ScheduledMapping, lower_schedule
from repro.schedule.schedule import Schedule
from repro.schedule.space import MUTATE_UNIFORMS, ScheduleSpace, default_schedule

# Tuner progress goes through the structured logger (JSONL on stderr):
# silent at the WARNING library default, narrated at INFO (the CLI's
# default unless --quiet / REPRO_LOG_LEVEL says otherwise).
_log = get_logger("repro.tuner")


@dataclass
class TunerConfig:
    """Exploration budget and options.

    ``prefilter_mappings`` implements the paper's model-guided filtering:
    every valid mapping is scored with the analytic model under a default
    heuristic schedule and only the top candidates enter the (more
    expensive) genetic schedule search.

    ``elite_fraction`` / ``mapping_mutation_prob`` are the GA's selection
    pressure and mapping re-draw rate (see
    :class:`~repro.explore.genetic.GeneticConfig`).  They are *budget*
    knobs — they change which candidates are explored, so they are part
    of the tuner-config fingerprint.

    ``n_workers`` / ``min_pool_batch`` / ``vectorized`` / ``ga_arrays``
    / ``cache_dir`` are execution knobs: they control how fast the same
    answer is produced, never which answer.  ``n_workers=None`` means
    "one worker per CPU core" (``os.cpu_count()``); ``n_workers=1``
    forces pure in-process evaluation.  ``vectorized`` selects the
    engine's array fast path (feature tables + batch evaluators,
    bit-identical to the scalar evaluators); ``vectorized=False`` falls
    back to per-candidate scalar evaluation.  ``ga_arrays`` selects the
    array-native exploration loop (the population as a
    :class:`~repro.schedule.features.ScheduleBatch`, row-keyed memo
    lookups, zero-copy pool handoff); ``ga_arrays=False`` runs the
    per-candidate object loop, which is the bit-identity oracle — same
    ranked candidates, same trials, equivalent manifests.  ``cache_dir``
    opts into the persistent compile cache consulted by
    :func:`repro.compiler.amos_compile`.

    ``run_dir`` / ``divergence_rate`` are flight-recorder knobs (also
    execution-only, excluded from the budget fingerprint): ``run_dir``
    makes every compile/tune write a :class:`~repro.obs.runlog.RunRecord`
    manifest there; ``divergence_rate`` samples that fraction of the
    engine's vectorized evaluations back through the scalar oracle and
    records parity as ``engine.divergence.*`` metrics.

    ``eval_timeout_s`` / ``max_retries`` / ``retry_backoff_s`` are the
    fault-tolerance knobs (execution-only too — every recovery path
    re-runs the same pure evaluator): the per-batch pool deadline in
    seconds (``None`` disables it; dead workers are still detected), the
    retry budget per failing task before it is quarantined inline, and
    the base of the exponential retry backoff.  ``fault_plan`` injects
    deterministic faults (worker kills, hangs, raises, torn cache
    writes) — test harness only, never set it in production.
    """

    population: int = 32
    generations: int = 8
    elite_fraction: float = 0.25
    mapping_mutation_prob: float = 0.15
    measure_top: int = 32
    prefilter_mappings: int = 24
    refine_rounds: int = 4
    refine_neighbors: int = 16
    seed: int = 0
    generation_options: GenerationOptions = field(default_factory=GenerationOptions)
    n_workers: int | None = None
    min_pool_batch: int = 16
    vectorized: bool = True
    ga_arrays: bool = True
    cache_dir: str | None = None
    run_dir: str | None = None
    divergence_rate: float = 0.0
    eval_timeout_s: float | None = None
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    fault_plan: FaultPlan | None = None


@dataclass
class Trial:
    """One explored candidate with model prediction and measurement.

    ``mapping_index`` is the candidate's position in the tune run's
    (prefiltered) mapping list — carried explicitly so downstream stages
    (refinement seeding, analysis) never have to recover it by object
    identity from ``scheduled.physical``.
    """

    scheduled: ScheduledMapping
    predicted_us: float
    measured_us: float | None = None
    mapping_index: int = -1


@dataclass
class ExplorationResult:
    """Outcome of tuning one operator on one device.

    ``telemetry`` carries the run's :class:`~repro.obs.explore_log.ExploreLog`
    (funnel counts, GA convergence, model-vs-simulator samples) when
    observability was enabled during the run; ``None`` otherwise.
    """

    best: ScheduledMapping
    best_us: float
    trials: list[Trial]
    num_mappings: int
    telemetry: ExploreLog | None = None

    def best_gflops(self) -> float:
        flops = self.best.useful_flops()
        return flops / (self.best_us * 1e-6) / 1e9 if self.best_us > 0 else 0.0

    def summary(self) -> dict:
        """Plain-dict run summary — the one serialization path shared by
        the benchmarks and the obs exporters."""
        measured = sum(1 for t in self.trials if t.measured_us is not None)
        return {
            "best_us": self.best_us,
            "best_gflops": self.best_gflops(),
            "num_mappings": self.num_mappings,
            "num_trials": len(self.trials),
            "trials_measured": measured,
            "trials_predicted_only": len(self.trials) - measured,
        }


def _encode_rows(
    engine: EvaluationEngine, items: list[tuple[int, Schedule]]
) -> tuple[np.ndarray, ScheduleBatch]:
    """Encode (engine mapping index, schedule) pairs as joint-width rows.

    The object→row boundary of the array-native tuner: default-schedule
    seeds and refinement starting points enter the row world here, with
    every spatial split materialized (rows are canonical), so their row
    keys match what the GA's column ops produce for the same schedule.
    """
    names_of = {mi: engine.features_of(mi).spatial_names for mi, _ in items}
    joint = max((len(names) for names in names_of.values()), default=0)
    n = len(items)
    mi_arr = np.asarray([mi for mi, _ in items], dtype=np.int64)
    warp = np.ones((n, joint), dtype=np.int64)
    seq = np.ones((n, joint), dtype=np.int64)
    stage = np.empty(n, dtype=np.int64)
    db = np.empty(n, dtype=bool)
    unroll = np.empty(n, dtype=np.int64)
    vectorize = np.empty(n, dtype=np.int64)
    for i, (mi, sched) in enumerate(items):
        for j, name in enumerate(names_of[mi]):
            split = sched.split_for(name)
            warp[i, j] = split.warp
            seq[i, j] = split.seq
        stage[i] = sched.reduce_stage
        db[i] = sched.double_buffer
        unroll[i] = sched.unroll
        vectorize[i] = sched.vectorize
    return mi_arr, ScheduleBatch(
        warp=warp,
        seq=seq,
        reduce_stage=stage,
        double_buffer=db,
        unroll=unroll,
        vectorize=vectorize,
    )


class Tuner:
    """Joint mapping x schedule tuner for one hardware target."""

    def __init__(self, hardware: HardwareParams, config: TunerConfig | None = None):
        self.hardware = hardware
        self.config = config or TunerConfig()

    # ------------------------------------------------------------------
    def candidate_mappings(self, comp: ReduceComputation) -> list[PhysicalMapping]:
        """All valid physical mappings across the target's intrinsics."""
        result: list[PhysicalMapping] = []
        with _obs_span("tuner.enumerate", operator=comp.name) as sp:
            for intrinsic in intrinsics_for_target(self.hardware.target):
                for mapping in enumerate_mappings(
                    comp, intrinsic, self.config.generation_options
                ):
                    result.append(lower_to_physical(mapping))
            sp.set(num_mappings=len(result))
        return result

    def _make_engine(
        self, comp: ReduceComputation, physical: list[PhysicalMapping]
    ) -> EvaluationEngine:
        return EvaluationEngine(
            comp,
            physical,
            self.hardware,
            n_workers=self.config.n_workers,
            min_pool_batch=self.config.min_pool_batch,
            vectorized=self.config.vectorized,
            divergence_rate=self.config.divergence_rate,
            fault_policy=FaultPolicy(
                eval_timeout_s=self.config.eval_timeout_s,
                max_retries=self.config.max_retries,
                backoff_s=self.config.retry_backoff_s,
            ),
            fault_plan=self.config.fault_plan,
        )

    def _prefilter_indices(
        self, engine: EvaluationEngine, physical: list[PhysicalMapping]
    ) -> list[int]:
        """Indices of the mappings the analytic model ranks best under a
        default schedule (paper Sec 5.3: the model filters inferior
        mappings); one batch prediction over every candidate mapping."""
        keep = self.config.prefilter_mappings
        if keep <= 0 or len(physical) <= keep:
            return list(range(len(physical)))
        with _obs_span("tuner.prefilter", candidates=len(physical), keep=keep):
            items = [(i, default_schedule(pm)) for i, pm in enumerate(physical)]
            if self.config.ga_arrays:
                # Row entry point: same candidates, row-keyed memo — so
                # the GA's later seed evaluations hit the same entries.
                mi_arr, batch = _encode_rows(engine, items)
                costs = engine.predict_rows(mi_arr, batch)
            else:
                costs = engine.predict_many(items)
            _obs_metrics.counter("model.predictions").inc(len(items))
            scored = sorted(zip(costs, range(len(physical))), key=lambda pair: pair[0])
            return [int(i) for _, i in scored[:keep]]

    def _prefilter(self, physical: list[PhysicalMapping]) -> list[PhysicalMapping]:
        """Standalone prefilter (kept for callers outside ``tune``)."""
        if not physical:
            return []
        with self._make_engine(physical[0].computation, physical) as engine:
            return [physical[i] for i in self._prefilter_indices(engine, physical)]

    def tune(
        self,
        comp: ReduceComputation,
        mappings: list[PhysicalMapping] | None = None,
    ) -> ExplorationResult:
        """Explore and return the best measured candidate.

        Args:
            comp: the operator to map.
            mappings: restrict the mapping choices (used by the fixed-
                mapping baselines); defaults to the full enumeration.

        When observability is enabled (``repro.obs.enable()``) the run's
        telemetry — mapping funnel, per-generation GA stats and paired
        model/simulator samples — is collected into an
        :class:`~repro.obs.explore_log.ExploreLog` (a caller-bound one via
        ``use_log``, else a fresh one) and attached to the result.
        Telemetry never alters exploration: RNG streams, candidate order
        and measurements are identical with obs on or off.

        When ``TunerConfig.run_dir`` is set (and no outer recorder — e.g.
        a recorded ``amos_compile`` — is already active) the run also
        writes a :class:`~repro.obs.runlog.RunRecord` manifest there.
        """
        if self.config.run_dir and active_recorder() is None:
            fingerprints = {
                "computation": computation_fingerprint(comp),
                "hardware": hardware_fingerprint(self.hardware),
                "tuner_config": tuner_config_fingerprint(self.config),
            }
            with FlightRecorder(
                self.config.run_dir,
                "tune",
                comp.name,
                self.hardware.name,
                self.config,
                fingerprints,
            ) as recorder:
                result = self._tune_logged(comp, mappings)
                recorder.set_outcome(
                    latency_us=result.best_us,
                    used_intrinsics=True,
                    num_mappings=result.num_mappings,
                    num_trials=len(result.trials),
                    mapping=result.best.physical.compute.describe(),
                    schedule=result.best.schedule.describe(),
                )
            return result
        return self._tune_logged(comp, mappings)

    def _tune_logged(
        self,
        comp: ReduceComputation,
        mappings: list[PhysicalMapping] | None = None,
    ) -> ExplorationResult:
        log = current_log()
        if log is None and _obs_enabled():
            log = ExploreLog(operator=comp.name, hardware=self.hardware.name)
            with use_log(log):
                return self._tune_impl(comp, mappings, log)
        return self._tune_impl(comp, mappings, log)

    def _tune_impl(
        self,
        comp: ReduceComputation,
        mappings: list[PhysicalMapping] | None,
        log: ExploreLog | None,
    ) -> ExplorationResult:
        with _obs_span(
            "tuner.tune", operator=comp.name, hardware=self.hardware.name
        ) as tune_span:
            all_physical = (
                mappings if mappings is not None else self.candidate_mappings(comp)
            )
            if not all_physical:
                raise ValueError(
                    f"no valid mapping of {comp.name} onto target {self.hardware.target!r}"
                )

            # The engine's __exit__ closes the pool on success but
            # *terminates* it when the tune raises — joining a worker
            # that is wedged mid-task would hang the abort forever.
            with self._make_engine(comp, all_physical) as engine:
                return self._explore(comp, all_physical, engine, log, tune_span)

    def _explore(
        self,
        comp: ReduceComputation,
        all_physical: list[PhysicalMapping],
        engine: EvaluationEngine,
        log: ExploreLog | None,
        tune_span,
    ) -> ExplorationResult:
        # Model-guided mapping pre-filter: rank mappings under a default
        # heuristic schedule, keep the top few for the schedule search.
        # ``selected`` maps prefiltered positions back to engine indices.
        selected = self._prefilter_indices(engine, all_physical)
        selected_arr = np.asarray(selected, dtype=np.int64)
        physical = [all_physical[i] for i in selected]
        if log is not None:
            log.record_funnel("prefiltered", len(physical))
        _log.info(
            "prefilter done",
            operator=comp.name,
            kept=len(physical),
            candidates=len(all_physical),
        )

        # Distinct mappings that receive at least one simulator
        # measurement (the funnel's final stage).
        measured_mappings: set[int] = set()

        def record_measurement(
            mapping_index: int, predicted: float, measured: float
        ) -> None:
            measured_mappings.add(mapping_index)
            _obs_metrics.counter("tuner.measurements").inc()
            if log is not None:
                log.record_sample(predicted, measured)

        def fitness_many(candidates: list[Candidate]) -> list[float]:
            items = [(selected[c.mapping_index], c.schedule) for c in candidates]
            _obs_metrics.counter("model.predictions").inc(len(items))
            return engine.predict_many(items)

        def fitness_rows(mapping_indices: np.ndarray, batch) -> np.ndarray:
            # The GA hands prefiltered-space indices; translate to engine
            # indices as one fancy-index, no per-candidate objects.
            _obs_metrics.counter("model.predictions").inc(len(batch))
            return engine.predict_rows(selected_arr[mapping_indices], batch)

        def measure_candidates(
            candidates: list[Candidate],
        ) -> list[tuple[float, float]]:
            items = [(selected[c.mapping_index], c.schedule) for c in candidates]
            if not items:
                return []
            if self.config.ga_arrays:
                mi_arr, batch = _encode_rows(engine, items)
                predicted, measured = engine.measure_rows(mi_arr, batch)
                return list(zip(predicted.tolist(), measured.tolist()))
            return engine.measure_many(items)

        max_warps = (
            self.hardware.max_warps_per_subcore * self.hardware.subcores_per_core
        )
        spaces = [
            ScheduleSpace(pm, max_warps_per_block=max_warps) for pm in physical
        ]
        seeds = [
            Candidate(i, default_schedule(pm, max_warps_per_block=max_warps))
            for i, pm in enumerate(physical)
        ]
        ga = GeneticConfig(
            population=self.config.population,
            generations=self.config.generations,
            elite_fraction=self.config.elite_fraction,
            mapping_mutation_prob=self.config.mapping_mutation_prob,
            seed=self.config.seed,
        )
        on_generation = None
        if log is not None or log_level() <= LEVELS["info"]:
            # Pure observation either way: the GA hands over fitnesses it
            # already computed, so logging cannot perturb the search.
            def on_generation(generation, fitnesses, unique):
                if log is not None:
                    log.record_generation(generation, fitnesses, unique)
                stats = generation_stats(generation, fitnesses, unique)
                _log.info(
                    "generation",
                    generation=generation,
                    best_us=stats.best_fitness,
                    mean_us=stats.mean_fitness,
                    diversity=round(stats.diversity, 3),
                )
        ga_rows = None
        with _obs_span("tuner.genetic_search", mappings=len(physical)):
            if self.config.ga_arrays:
                ga_rows = genetic_search_rows(
                    physical,
                    fitness_rows,
                    config=ga,
                    seeds=seeds,
                    spaces=spaces,
                    on_generation=on_generation,
                )
                # Trial-boundary materialization: the only place the
                # array-native loop builds per-candidate objects.
                ranked = ga_rows.candidates(spaces)
            else:
                ranked = genetic_search(
                    physical,
                    config=ga,
                    seeds=seeds,
                    spaces=spaces,
                    on_generation=on_generation,
                    fitness_many=fitness_many,
                )

        def measure_ranked(indices: list[int]) -> list[tuple[float, float]]:
            """Measure ranked candidates by rank index — as zero-copy row
            slices of the GA archive in arrays mode."""
            if not indices:
                return []
            if ga_rows is not None:
                rows = np.asarray(indices, dtype=np.int64)
                predicted, measured = engine.measure_rows(
                    selected_arr[ga_rows.mapping_index[rows]],
                    take_rows(ga_rows.batch, rows),
                )
                return list(zip(predicted.tolist(), measured.tolist()))
            return measure_candidates([ranked[i][0] for i in indices])

        # Measure on the "hardware": the model's global top plus the best
        # model-ranked candidate of every surviving mapping, so a mapping
        # the model slightly misranks still gets one real measurement.
        to_measure: list[int] = []
        seen_mappings: set[int] = set()
        for idx, (candidate, _) in enumerate(ranked):
            if idx < self.config.measure_top:
                to_measure.append(idx)
                seen_mappings.add(candidate.mapping_index)
            elif candidate.mapping_index not in seen_mappings:
                to_measure.append(idx)
                seen_mappings.add(candidate.mapping_index)
        measured_set = set(to_measure)

        trials: list[Trial] = []
        best: ScheduledMapping | None = None
        best_candidate: Candidate | None = None
        best_us = float("inf")

        # Canonical keys of candidates already measured this run, so the
        # seed safety net below never simulates (or double-counts in the
        # trials/telemetry) a candidate the ranked pass covered.
        measured_keys: set[tuple[int, str]] = set()

        _log.info(
            "measuring candidates", operator=comp.name, candidates=len(measured_set)
        )
        with _obs_span("tuner.measure", candidates=len(measured_set)):
            measured_results = measure_ranked(to_measure)
            measured_by_rank = dict(zip(to_measure, measured_results))
            for idx, (candidate, predicted) in enumerate(ranked):
                sched = lower_schedule(
                    physical[candidate.mapping_index], candidate.schedule
                )
                if idx in measured_set:
                    _, measured = measured_by_rank[idx]
                    measured_keys.add(
                        (candidate.mapping_index, candidate.schedule.describe())
                    )
                    record_measurement(candidate.mapping_index, predicted, measured)
                    trials.append(
                        Trial(sched, predicted, measured, candidate.mapping_index)
                    )
                    if measured < best_us:
                        best_us = measured
                        best = sched
                        best_candidate = candidate
                else:
                    trials.append(
                        Trial(sched, predicted, mapping_index=candidate.mapping_index)
                    )

            # Safety net: the default heuristic schedule of every mapping
            # is always measured, so a batch of model-favoured but
            # infeasible candidates cannot leave the tuner empty-handed.
            # Seeds the ranked pass already measured are skipped: their
            # values are known and re-appending them would double-count
            # measurements in the trials and telemetry.
            net = [
                seed_candidate
                for seed_candidate in seeds
                if (
                    seed_candidate.mapping_index,
                    seed_candidate.schedule.describe(),
                )
                not in measured_keys
            ]
            for seed_candidate, (predicted, measured) in zip(
                net, measure_candidates(net)
            ):
                record_measurement(seed_candidate.mapping_index, predicted, measured)
                sched = lower_schedule(
                    physical[seed_candidate.mapping_index], seed_candidate.schedule
                )
                trials.append(
                    Trial(sched, predicted, measured, seed_candidate.mapping_index)
                )
                if measured < best_us:
                    best_us = measured
                    best = sched
                    best_candidate = seed_candidate
        if best is None or best_candidate is None:
            raise RuntimeError(f"no feasible schedule found for {comp.name}")

        # Measured refinement rounds: AMOS's tuning loop alternates model-
        # guided proposal with hardware measurement over many rounds; here
        # the top measured candidates are hill-climbed for a few rounds
        # each.  A round draws all its neighbors from the round's starting
        # point and measures them as one batch, then steps to the round's
        # best improvement — deterministic for any worker count.
        measured_trials = sorted(
            (t for t in trials if t.measured_us is not None),
            key=lambda t: t.measured_us,
        )
        seeds_for_refine: list[tuple[Candidate, float]] = []
        seen: set[int] = set()
        for trial in measured_trials:
            mi = trial.mapping_index
            if mi in seen:
                continue
            seen.add(mi)
            seeds_for_refine.append(
                (Candidate(mi, trial.scheduled.schedule), trial.measured_us)
            )
            if len(seeds_for_refine) >= 4:
                break

        # One uniform matrix per refinement round, from a dedicated seeded
        # generator: both execution modes draw the identical matrices and
        # decode them with their own implementation (column ops vs the
        # scalar twins), so refinement steps agree bit-for-bit.
        rng = np.random.default_rng(self.config.seed + 1)
        _log.info(
            "refining",
            operator=comp.name,
            starts=len(seeds_for_refine),
            rounds=self.config.refine_rounds,
        )
        with _obs_span("tuner.refine", starts=len(seeds_for_refine)):
            for start_candidate, start_us in seeds_for_refine:
                current, current_us = start_candidate, start_us
                for _ in range(self.config.refine_rounds):
                    # The same hardware-capped spaces the GA sampled from:
                    # hill-climbing must not mutate into schedules that
                    # exceed the device's warp budget.
                    space = spaces[current.mapping_index]
                    k = self.config.refine_neighbors
                    u = rng.random((k, MUTATE_UNIFORMS))
                    if self.config.ga_arrays:
                        engine_mi = selected[current.mapping_index]
                        _, cur = _encode_rows(
                            engine, [(engine_mi, current.schedule)]
                        )
                        base = take_rows(cur, np.zeros(k, dtype=np.int64))
                        warp, seq, stage, db, un, ve = space.mutate_columns(
                            base.warp,
                            base.seq,
                            base.reduce_stage,
                            base.double_buffer,
                            base.unroll,
                            base.vectorize,
                            u,
                        )
                        nb_batch = ScheduleBatch(
                            warp=warp,
                            seq=seq,
                            reduce_stage=stage,
                            double_buffer=db,
                            unroll=un,
                            vectorize=ve,
                        )
                        predicted_arr, measured_arr = engine.measure_rows(
                            np.full(k, engine_mi, dtype=np.int64), nb_batch
                        )
                        # Every neighbor becomes a Trial, so this decode
                        # is the trial boundary, not a per-candidate loop.
                        neighbors = [
                            Candidate(current.mapping_index, sch)
                            for sch in schedules_from_rows(
                                space.spatial_names, nb_batch
                            )
                        ]
                        results = list(
                            zip(predicted_arr.tolist(), measured_arr.tolist())
                        )
                    else:
                        neighbors = [
                            Candidate(
                                current.mapping_index,
                                space.mutate_with_uniforms(current.schedule, u[i]),
                            )
                            for i in range(k)
                        ]
                        results = measure_candidates(neighbors)
                    improved = False
                    for neighbor, (predicted, measured) in zip(neighbors, results):
                        record_measurement(
                            neighbor.mapping_index, predicted, measured
                        )
                        sched = lower_schedule(
                            physical[neighbor.mapping_index], neighbor.schedule
                        )
                        trials.append(
                            Trial(sched, predicted, measured, neighbor.mapping_index)
                        )
                        if measured < current_us:
                            current_us = measured
                            current = neighbor
                            improved = True
                        if measured < best_us:
                            best_us = measured
                            best = sched
                    if not improved:
                        break

        if log is not None:
            log.record_funnel("measured", len(measured_mappings))
        _log.info(
            "tune done",
            operator=comp.name,
            best_us=best_us,
            mappings=len(physical),
            trials=len(trials),
        )
        tune_span.set(best_us=best_us, num_mappings=len(physical))
        return ExplorationResult(
            best=best,
            best_us=best_us,
            trials=trials,
            num_mappings=len(physical),
            telemetry=log,
        )
