"""Lowering a scheduled mapping to the Table-4 IR.

Produces a :class:`LoweredProgram`: the per-operand ``Memory`` nodes (one
per memory-abstraction statement, with concrete base-address expressions
from the physical memory mapping) and the central ``Compute`` node (with
the fused intrinsic-iteration expressions).  The code generators render
this structure as kernel source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.expr import Expr, Mod
from repro.ir.tensor import Tensor
from repro.lower.nodes import (
    ArrayNode,
    BufferLoadNode,
    ComputeNode,
    ExprNode,
    MemoryNode,
    StringNode,
    TensorNode,
)
from repro.schedule.lowering import ScheduledMapping


@dataclass(frozen=True)
class LoweredProgram:
    """IR for one compiled kernel."""

    scheduled: ScheduledMapping
    memory_nodes: tuple[MemoryNode, ...]
    compute_node: ComputeNode

    def all_nodes(self):
        yield from self.memory_nodes
        yield self.compute_node


def lower_mapping(sched: ScheduledMapping) -> LoweredProgram:
    """Lower one scheduled mapping into Compute/Memory IR nodes."""
    physical = sched.physical
    intr = physical.intrinsic
    abstraction = intr.compute.computation

    # Memory nodes: one per memory-abstraction statement, using the
    # physical memory mapping's address expressions.
    memory_nodes: list[MemoryNode] = []
    for stmt in intr.memory.statements:
        operand = stmt.operand
        address = physical.operand_address(operand)
        shape = intr.compute.operand_shape(operand)
        dst = TensorNode(Tensor(f"{stmt.dst_scope}.{operand}", shape, intr.in_dtype))
        src_tensor = TensorNode(
            Tensor(f"{stmt.src_scope}.{operand}", shape, intr.in_dtype)
        )
        load = BufferLoadNode(src_tensor, (ExprNode(address.base),))
        memory_nodes.append(
            MemoryNode(
                dst,
                StringNode(stmt.dst_scope),
                load,
                intrinsic_name=_memory_intrinsic_name(intr.target, stmt.dst_scope, operand),
            )
        )

    # Compute node: destination tile, intrinsic body, and the physical
    # (modulo-split) fused iteration expressions.
    iter_exprs = []
    for t, split in enumerate(physical.splits):
        fused: Expr = physical.compute.fused_index_expr(t)
        iter_exprs.append(ExprNode(Mod(fused, _const(split.problem_size))))
    dst_shape = intr.compute.operand_shape(intr.operand_names[0])
    compute_node = ComputeNode(
        dst=TensorNode(Tensor(f"reg.{intr.operand_names[0]}", dst_shape, intr.out_dtype)),
        body=ExprNode(_body_expr(abstraction)),
        intrinsic_iters=ArrayNode(tuple(iter_exprs)),
        intrinsic_name=intr.name,
    )
    return LoweredProgram(sched, tuple(memory_nodes), compute_node)


def _const(value: int):
    from repro.ir.expr import IntImm

    return IntImm(value)


def _body_expr(abstraction) -> Expr:
    """The intrinsic's arithmetic expression over its operand accesses."""
    from repro.ir.expr import Call

    args = []
    for access in abstraction.inputs:
        args.append(Call(access.tensor.name, tuple(access.indices)))
    return Call(abstraction.combine, tuple(args))


def _memory_intrinsic_name(target: str, dst_scope: str, operand: str) -> str:
    if target == "tensorcore":
        if dst_scope == "reg":
            return "wmma::load_matrix_sync"
        if dst_scope == "global":
            return "wmma::store_matrix_sync"
        return "cp.async"
    return f"{target}.copy"
