"""IR nodes implementing paper Table 4.

The hardware abstraction is carried through lowering by two new IR nodes
on top of five basic ones:

* basic: ``Expr`` (arithmetic), ``BufferLoad`` (multi-dim load), ``Tensor``
  (n-dim buffer), ``Array`` (node list), ``String``;
* new: ``Compute(Tensor, Expr, Array<Expr>)`` — a small loop nest matching
  one compute intrinsic — and ``Memory(Tensor, String, BufferLoad)`` — one
  memory-intrinsic load/store with scope information.

These nodes are what the code generator walks; they are attached to the
scheduled mapping's loop structure by :func:`repro.lower.lower.lower_mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.ir.expr import Expr
from repro.ir.tensor import Tensor


class IRNode:
    """Base class of the lowering IR."""

    def children(self) -> tuple["IRNode", ...]:
        return ()

    def walk(self) -> Iterator["IRNode"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class ExprNode(IRNode):
    """Wrapper carrying a scalar arithmetic expression."""

    expr: Expr

    def __repr__(self) -> str:
        return repr(self.expr)


@dataclass(frozen=True)
class TensorNode(IRNode):
    """An n-dimensional data buffer."""

    tensor: Tensor

    def __repr__(self) -> str:
        return repr(self.tensor)


@dataclass(frozen=True)
class StringNode(IRNode):
    """A string attribute (buffer scope: global / shared / reg)."""

    value: str

    def __repr__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class BufferLoadNode(IRNode):
    """Multi-dimensional load from a buffer at the given indices."""

    tensor: TensorNode
    indices: tuple[ExprNode, ...]

    def children(self) -> tuple[IRNode, ...]:
        return (self.tensor, *self.indices)

    def __repr__(self) -> str:
        joined = ", ".join(repr(i) for i in self.indices)
        return f"{self.tensor.tensor.name}[{joined}]"


@dataclass(frozen=True)
class ArrayNode(IRNode):
    """A packed list of IR nodes."""

    items: tuple[IRNode, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def children(self) -> tuple[IRNode, ...]:
        return self.items

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(i) for i in self.items) + "]"


@dataclass(frozen=True)
class ComputeNode(IRNode):
    """Compute(Tensor, Expr, Array<Expr>): a loop nest matching one compute
    intrinsic — destination buffer, arithmetic expression, and intrinsic
    iteration expressions (the fused software indices)."""

    dst: TensorNode
    body: ExprNode
    intrinsic_iters: ArrayNode
    intrinsic_name: str = ""

    def children(self) -> tuple[IRNode, ...]:
        return (self.dst, self.body, self.intrinsic_iters)

    def __repr__(self) -> str:
        return (
            f"Compute({self.dst.tensor.name}, {self.body!r}, "
            f"{self.intrinsic_iters!r}, intrinsic={self.intrinsic_name})"
        )


@dataclass(frozen=True)
class MemoryNode(IRNode):
    """Memory(Tensor, String, BufferLoad): one memory-intrinsic transfer —
    destination buffer, destination scope, and the source load."""

    dst: TensorNode
    scope: StringNode
    src: BufferLoadNode
    intrinsic_name: str = ""

    def children(self) -> tuple[IRNode, ...]:
        return (self.dst, self.scope, self.src)

    def __repr__(self) -> str:
        return (
            f"Memory({self.dst.tensor.name}, {self.scope!r}, {self.src!r}, "
            f"intrinsic={self.intrinsic_name})"
        )
