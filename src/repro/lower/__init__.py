"""Compiler IR nodes for hardware abstraction (paper Sec 6, Table 4)."""

from repro.lower.nodes import (
    ArrayNode,
    BufferLoadNode,
    ComputeNode,
    ExprNode,
    IRNode,
    MemoryNode,
    StringNode,
    TensorNode,
)
from repro.lower.lower import lower_mapping, LoweredProgram

__all__ = [
    "ArrayNode",
    "BufferLoadNode",
    "ComputeNode",
    "ExprNode",
    "IRNode",
    "LoweredProgram",
    "MemoryNode",
    "StringNode",
    "TensorNode",
    "lower_mapping",
]
