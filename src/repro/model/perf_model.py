"""The paper's hierarchical analytic performance model (Sec 5.3).

The accelerator is modelled level by level; level 0 is the intrinsic::

    Perf = L_{num_levels - 1}
    L_l  = prod(S_l) * max(L_{l-1}, R_{l-1}, W_{l-1})     for l > 0
    L_0  = prod(S_0) * latency_of_intrinsic
    R_l  = DataIn_l  / in_bw_l
    W_l  = DataOut_l / out_bw_l

with ``S_l`` the sequential (un-bound) loops of level ``l`` and the data
volumes inferred from the buffer footprints of the scheduled mapping.

Three levels are instantiated, matching Fig 1a:

* level 0 — one warp issuing intrinsic calls on a sub-core,
* level 1 — a block on a core, staging operands through the shared buffer,
* level 2 — the grid on the whole device, streaming from global memory.

The model deliberately omits residency limits, wave quantisation, launch
overhead and measurement noise — those live in :mod:`repro.sim.timing` —
so its predictions track the simulated ground truth in *trend*, which is
what Fig 5 of the paper demonstrates (pairwise rank accuracy ~0.86).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.hardware_params import HardwareParams
from repro.schedule.lowering import ScheduledMapping


@dataclass(frozen=True)
class PerfPrediction:
    """Analytic latency prediction with the per-level terms (microseconds)."""

    total_us: float
    level0_us: float
    level1_us: float
    level2_us: float
    read_us: float
    write_us: float

    def gflops(self, useful_flops: int) -> float:
        if self.total_us <= 0:
            return 0.0
        return useful_flops / (self.total_us * 1e-6) / 1e9


def predict_latency(sched: ScheduledMapping, hw: HardwareParams) -> PerfPrediction:
    """Evaluate the analytic model on a scheduled mapping."""
    clock_hz = hw.clock_ghz * 1e9
    intr = sched.physical.intrinsic

    # ---- level 0: one warp on a sub-core ---------------------------------
    # Sequential loops of level 0: the calls one warp issues.
    cycles_per_call = intr.macs_per_call() / hw.intrinsic_macs_per_cycle
    l0_us = sched.calls_per_warp * cycles_per_call / clock_hz * 1e6

    # ---- level 1: one block on a core ------------------------------------
    # The block's warps run in parallel across the sub-cores; warps beyond
    # the sub-core count serialise (sequential loops of level 1).
    s1 = math.ceil(sched.warps_per_block / hw.subcores_per_core)
    footprints = sched.operand_footprints
    data_in_1 = sum(f.block_traffic_bytes for f in footprints if not f.is_output)
    data_out_1 = sum(f.block_traffic_bytes for f in footprints if f.is_output)
    shared_bw = hw.shared_bandwidth_gbs_per_core * 1e9
    r1_us = data_in_1 / shared_bw * 1e6 if intr.memory.uses_shared() else 0.0
    w1_us = data_out_1 / shared_bw * 1e6 if intr.memory.uses_shared() else 0.0
    l1_us = s1 * max(l0_us, r1_us, w1_us)

    # ---- level 2: the grid on the device ---------------------------------
    s2 = math.ceil(sched.num_blocks / hw.num_cores)
    data_in_2 = data_in_1 * sched.num_blocks
    data_out_2 = data_out_1 * sched.num_blocks
    global_bw = hw.global_bandwidth_gbs * 1e9
    # Reads/writes of the whole grid stream through global memory; the
    # per-core share is the device bandwidth divided by the cores busy in
    # one "round" of blocks.
    busy_cores = min(sched.num_blocks, hw.num_cores)
    r2_us = (data_in_2 / s2) / (global_bw * busy_cores / hw.num_cores) * 1e6 if busy_cores else 0.0
    w2_us = (data_out_2 / s2) / (global_bw * busy_cores / hw.num_cores) * 1e6 if busy_cores else 0.0
    l2_us = s2 * max(l1_us, r2_us, w2_us)

    return PerfPrediction(
        total_us=l2_us,
        level0_us=l0_us,
        level1_us=l1_us,
        level2_us=l2_us,
        read_us=max(r1_us, r2_us),
        write_us=max(w1_us, w2_us),
    )
