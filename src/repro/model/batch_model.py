"""Vectorized batch evaluation of the analytic model (Sec 5.3).

:func:`batch_predict` evaluates :func:`repro.model.perf_model.predict_latency`
for a whole schedule batch of one mapping in a handful of numpy array
expressions.  The scalar function stays the reference oracle: every float64
operation here is performed in the same order per element as the scalar
code, so the results are **bit-identical**, not merely close — the
equivalence suite compares with ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.hardware_params import HardwareParams
from repro.schedule.features import (
    BatchQuantities,
    MappingFeatures,
    ScheduleBatch,
    derive_batch,
)

__all__ = ["BatchPrediction", "batch_predict"]


@dataclass(frozen=True, eq=False)
class BatchPrediction:
    """Per-candidate analytic predictions (microseconds), float64 arrays."""

    total_us: np.ndarray
    level0_us: np.ndarray
    level1_us: np.ndarray
    level2_us: np.ndarray
    read_us: np.ndarray
    write_us: np.ndarray


def batch_predict(
    features: MappingFeatures,
    batch: ScheduleBatch,
    hw: HardwareParams,
    quantities: BatchQuantities | None = None,
) -> BatchPrediction:
    """Analytic-model predictions for every schedule in the batch.

    ``quantities`` lets a caller evaluating both model and simulator on
    the same batch derive the lowering arrays once.
    """
    q = quantities if quantities is not None else derive_batch(features, batch)
    clock_hz = hw.clock_ghz * 1e9

    # ---- level 0: one warp on a sub-core ---------------------------------
    cycles_per_call = features.macs_per_call / hw.intrinsic_macs_per_cycle
    l0_us = q.calls_per_warp * cycles_per_call / clock_hz * 1e6

    # ---- level 1: one block on a core ------------------------------------
    s1 = np.ceil(q.warps_per_block / hw.subcores_per_core)
    shared_bw = hw.shared_bandwidth_gbs_per_core * 1e9
    if features.uses_shared:
        r1_us = q.input_traffic_bytes / shared_bw * 1e6
        w1_us = q.output_traffic_bytes / shared_bw * 1e6
    else:
        r1_us = np.zeros(len(batch))
        w1_us = np.zeros(len(batch))
    l1_us = s1 * np.maximum(np.maximum(l0_us, r1_us), w1_us)

    # ---- level 2: the grid on the device ---------------------------------
    s2 = np.ceil(q.num_blocks / hw.num_cores)
    data_in_2 = q.input_traffic_bytes * q.num_blocks
    data_out_2 = q.output_traffic_bytes * q.num_blocks
    global_bw = hw.global_bandwidth_gbs * 1e9
    busy_cores = np.minimum(q.num_blocks, hw.num_cores)
    core_share = global_bw * busy_cores / hw.num_cores
    r2_us = (data_in_2 / s2) / core_share * 1e6
    w2_us = (data_out_2 / s2) / core_share * 1e6
    l2_us = s2 * np.maximum(np.maximum(l1_us, r2_us), w2_us)

    return BatchPrediction(
        total_us=l2_us,
        level0_us=l0_us,
        level1_us=l1_us,
        level2_us=l2_us,
        read_us=np.maximum(r1_us, r2_us),
        write_us=np.maximum(w1_us, w2_us),
    )
