"""Analytic performance model (paper Sec 5.3) and hardware parameters."""

from repro.model.hardware_params import HardwareParams, get_hardware, list_hardware
from repro.model.perf_model import predict_latency, PerfPrediction
from repro.model.batch_model import batch_predict, BatchPrediction

__all__ = [
    "BatchPrediction",
    "HardwareParams",
    "PerfPrediction",
    "batch_predict",
    "get_hardware",
    "list_hardware",
    "predict_latency",
]
