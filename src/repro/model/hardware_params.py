"""Hardware parameter sets for the simulated accelerators.

Each parameter set describes a 3-level spatial accelerator in the shape of
paper Fig 1a: cores (SMs / CPU cores / shader cores) contain sub-cores
(warp schedulers / SIMD ports / execution engines) which contain the
intrinsic execution units (Tensor Cores / FMA ports / dot units), plus the
memory hierarchy (global -> shared -> registers).

Numbers follow the public specifications of the devices the paper
evaluates (V100, A100, Xeon Silver 4110, Mali G76); they parameterise the
simulator, and only *relative* performance across mappings/compilers is
meaningful, as discussed in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HardwareParams:
    """Parameters of one simulated spatial accelerator.

    Attributes:
        name: device identifier (``"v100"``...).
        target: intrinsic family executable by this device.
        num_cores: top-level cores sharing global memory.
        subcores_per_core: schedulers per core sharing the core's buffers.
        intrinsic_macs_per_cycle: scalar multiply-accumulates the intrinsic
            units of ONE sub-core complete per cycle.
        scalar_macs_per_cycle: MACs per cycle of one sub-core's scalar/SIMT
            path (the fallback when an operator cannot use intrinsics).
        clock_ghz: core clock.
        global_bandwidth_gbs: device-memory bandwidth, GB/s.
        shared_bandwidth_gbs_per_core: shared-buffer bandwidth per core.
        shared_capacity_bytes: shared buffer per core.
        reg_capacity_bytes: register file per sub-core.
        max_warps_per_subcore: resident warp contexts per sub-core.
        max_blocks_per_core: resident block limit per core.
        launch_overhead_us: per-kernel fixed overhead.
    """

    name: str
    target: str
    num_cores: int
    subcores_per_core: int
    intrinsic_macs_per_cycle: float
    scalar_macs_per_cycle: float
    clock_ghz: float
    global_bandwidth_gbs: float
    shared_bandwidth_gbs_per_core: float
    shared_capacity_bytes: int
    reg_capacity_bytes: int
    max_warps_per_subcore: int = 16
    max_blocks_per_core: int = 32
    launch_overhead_us: float = 3.0

    @property
    def peak_intrinsic_flops(self) -> float:
        """Peak FLOP/s through intrinsics (2 FLOPs per MAC)."""
        return (
            2.0
            * self.intrinsic_macs_per_cycle
            * self.subcores_per_core
            * self.num_cores
            * self.clock_ghz
            * 1e9
        )

    @property
    def peak_scalar_flops(self) -> float:
        return (
            2.0
            * self.scalar_macs_per_cycle
            * self.subcores_per_core
            * self.num_cores
            * self.clock_ghz
            * 1e9
        )

    def with_overrides(self, **kwargs) -> "HardwareParams":
        """Copy with selected fields replaced (used by ablation benches)."""
        return replace(self, **kwargs)


_HARDWARE: dict[str, HardwareParams] = {}


def _register(params: HardwareParams) -> HardwareParams:
    _HARDWARE[params.name] = params
    return params


# NVIDIA V100 (Volta): 80 SMs x 4 sub-cores, 2 Tensor Cores per sub-core,
# each 64 fp16 MACs/cycle -> 128 MACs/cycle/sub-core; ~125 TFLOP/s fp16 TC
# peak, ~15.7 TFLOP/s fp32 CUDA-core peak, 900 GB/s HBM2, 96 KiB shared/SM.
V100 = _register(
    HardwareParams(
        name="v100",
        target="tensorcore",
        num_cores=80,
        subcores_per_core=4,
        intrinsic_macs_per_cycle=128.0,
        scalar_macs_per_cycle=16.0,
        clock_ghz=1.53,
        global_bandwidth_gbs=900.0,
        shared_bandwidth_gbs_per_core=256.0,
        shared_capacity_bytes=96 * 1024,
        reg_capacity_bytes=64 * 1024,
    )
)

# NVIDIA A100 (Ampere): 108 SMs x 4 sub-cores, 1 third-gen Tensor Core per
# sub-core at 256 fp16 MACs/cycle -> 312 TFLOP/s fp16 TC peak, 19.5 TFLOP/s
# fp32, 1555 GB/s HBM2e, 164 KiB shared/SM.
A100 = _register(
    HardwareParams(
        name="a100",
        target="tensorcore",
        num_cores=108,
        subcores_per_core=4,
        intrinsic_macs_per_cycle=256.0,
        scalar_macs_per_cycle=16.0,
        clock_ghz=1.41,
        global_bandwidth_gbs=1555.0,
        shared_bandwidth_gbs_per_core=384.0,
        shared_capacity_bytes=164 * 1024,
        reg_capacity_bytes=64 * 1024,
    )
)

# Intel Xeon Silver 4110: 8 cores, 2.1 GHz, one 512-bit FMA port; the VNNI
# dot intrinsic retires 64 int8 MACs per cycle per core.  Scalar path is
# 256-bit AVX2 fp32 (8 MACs/cycle).  ~115 GB/s six-channel DDR4.
XEON_4110 = _register(
    HardwareParams(
        name="xeon_4110",
        target="avx512",
        num_cores=8,
        subcores_per_core=1,
        intrinsic_macs_per_cycle=64.0,
        scalar_macs_per_cycle=8.0,
        clock_ghz=2.1,
        global_bandwidth_gbs=115.0,
        shared_bandwidth_gbs_per_core=64.0,
        shared_capacity_bytes=1024 * 1024,  # L2 slice used as the staging buffer
        reg_capacity_bytes=2 * 1024,
        max_warps_per_subcore=2,
        max_blocks_per_core=2,
        launch_overhead_us=1.0,
    )
)

# Arm Mali G76 (Bifrost): 12 shader cores x 3 execution engines, 8-wide
# int8 dot product per lane group -> 32 int8 MACs/cycle/engine at 0.72 GHz;
# LPDDR4X ~30 GB/s.
MALI_G76 = _register(
    HardwareParams(
        name="mali_g76",
        target="mali",
        num_cores=12,
        subcores_per_core=3,
        intrinsic_macs_per_cycle=32.0,
        scalar_macs_per_cycle=8.0,
        clock_ghz=0.72,
        global_bandwidth_gbs=30.0,
        shared_bandwidth_gbs_per_core=24.0,
        shared_capacity_bytes=32 * 1024,
        reg_capacity_bytes=8 * 1024,
        max_warps_per_subcore=4,
        max_blocks_per_core=8,
        launch_overhead_us=10.0,
    )
)

# Virtual accelerators of Sec 7.5: modest machines used to demonstrate
# retargetability, one per BLAS-level intrinsic.
AXPY_ACCEL = _register(
    HardwareParams(
        name="axpy_accel",
        target="axpy_accel",
        num_cores=16,
        subcores_per_core=2,
        intrinsic_macs_per_cycle=32.0,
        scalar_macs_per_cycle=4.0,
        clock_ghz=1.0,
        global_bandwidth_gbs=100.0,
        shared_bandwidth_gbs_per_core=32.0,
        shared_capacity_bytes=32 * 1024,
        reg_capacity_bytes=8 * 1024,
    )
)

GEMV_ACCEL = _register(
    HardwareParams(
        name="gemv_accel",
        target="gemv_accel",
        num_cores=16,
        subcores_per_core=2,
        intrinsic_macs_per_cycle=128.0,
        scalar_macs_per_cycle=4.0,
        clock_ghz=1.0,
        global_bandwidth_gbs=200.0,
        shared_bandwidth_gbs_per_core=64.0,
        shared_capacity_bytes=64 * 1024,
        reg_capacity_bytes=16 * 1024,
    )
)

CONV_ACCEL = _register(
    HardwareParams(
        name="conv_accel",
        target="conv_accel",
        num_cores=16,
        subcores_per_core=2,
        intrinsic_macs_per_cycle=256.0,
        scalar_macs_per_cycle=4.0,
        clock_ghz=1.0,
        global_bandwidth_gbs=400.0,
        shared_bandwidth_gbs_per_core=128.0,
        shared_capacity_bytes=128 * 1024,
        reg_capacity_bytes=32 * 1024,
    )
)


def get_hardware(name: str) -> HardwareParams:
    try:
        return _HARDWARE[name]
    except KeyError:
        known = ", ".join(sorted(_HARDWARE))
        raise KeyError(f"unknown hardware {name!r}; known: {known}") from None


def list_hardware() -> list[str]:
    return sorted(_HARDWARE)
