"""End-to-end network evaluation (paper Sec 7.4).

Runs every operator of a network graph through a compiler backend on one
simulated device and sums the latencies.  Non-tensor operators (ReLU,
pooling, softmax...) are bandwidth-bound on every backend and costed
identically, so backend differences come only from the tensor operators —
the same situation as on real hardware, where the paper's speedups come
from convolutions and matmuls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.frontends.networks import NetworkOp, expand_ops
from repro.ir.compute import ReduceComputation
from repro.model.hardware_params import HardwareParams
from repro.compiler import CompiledKernel, amos_compile
from repro.explore.tuner import TunerConfig
from repro.obs import metrics as _obs_metrics
from repro.obs.trace import span as _obs_span


class Backend(Protocol):
    """Anything that can compile one operator for one device."""

    name: str

    def compile(self, comp: ReduceComputation, hw: HardwareParams) -> CompiledKernel: ...


@dataclass
class AmosBackend:
    """AMOS itself, wrapped in the backend protocol."""

    name: str = "amos"
    config: TunerConfig | None = None

    def compile(self, comp: ReduceComputation, hw: HardwareParams) -> CompiledKernel:
        return amos_compile(comp, hw, self.config)


@dataclass(frozen=True)
class NetworkResult:
    """End-to-end latency of one network on one backend."""

    network: str
    backend: str
    total_us: float
    tensor_us: float
    non_tensor_us: float
    mapped_ops: int
    tensor_ops: int
    total_ops: int


def non_tensor_cost_us(elements: int, hw: HardwareParams, element_bytes: int = 2) -> float:
    """Bandwidth-bound cost of an element-wise / pooling / softmax op."""
    traffic = 2.0 * elements * element_bytes  # read once, write once
    return traffic / (hw.global_bandwidth_gbs * 1e9 * 0.75) * 1e6 + hw.launch_overhead_us


def evaluate_network(
    name: str,
    ops: list[NetworkOp],
    backend: Backend,
    hw: HardwareParams,
    batch: int = 1,
) -> NetworkResult:
    """Compile and time every operator of the network; returns the totals.

    Identical (kind, params) operators are compiled once and their
    latency reused — networks repeat layer shapes heavily.
    """
    cache: dict[str, CompiledKernel] = {}
    tensor_us = 0.0
    non_tensor_us = 0.0
    mapped = 0
    tensor_ops = 0
    total = 0
    with _obs_span(
        "evaluate.network", network=name, hardware=hw.name, batch=batch
    ) as net_span:
        for op in expand_ops(ops):
            total += 1
            if not op.is_tensor_op:
                non_tensor_us += non_tensor_cost_us(op.elements(batch), hw)
                _obs_metrics.counter("evaluate.non_tensor_ops").inc()
                continue
            tensor_ops += 1
            key = f"{op.kind}|{sorted(op.params.items())}|{batch}"
            if key not in cache:
                with _obs_span("evaluate.layer", kind=op.kind) as layer_span:
                    cache[key] = backend.compile(op.computation(batch), hw)
                    layer_span.set(latency_us=cache[key].latency_us)
                _obs_metrics.counter("evaluate.layers_compiled").inc()
            else:
                _obs_metrics.counter("evaluate.layer_cache_hits").inc()
            kernel = cache[key]
            tensor_us += kernel.latency_us
            if kernel.used_intrinsics:
                mapped += 1
        net_span.set(
            total_us=tensor_us + non_tensor_us, mapped_ops=mapped, tensor_ops=tensor_ops
        )
    return NetworkResult(
        network=name,
        backend=getattr(backend, "name", type(backend).__name__),
        total_us=tensor_us + non_tensor_us,
        tensor_us=tensor_us,
        non_tensor_us=non_tensor_us,
        mapped_ops=mapped,
        tensor_ops=tensor_ops,
        total_ops=total,
    )
